// Package tcq implements opportunistic thread combining for Value
// Storage reads (§5.3).
//
// Concurrent reader threads line up in a Thread Combining Queue — an
// MCS-style list built with one atomic swap on the tail. The thread that
// finds the tail empty becomes the leader: it walks the queue, coalesces
// up to QueueDepth read requests (its own plus its followers'), submits
// them as one asynchronous batch, and distributes completions. Followers
// return as soon as the leader has serviced them. When the queue is
// longer than the coalescing limit, the leader hands leadership to the
// next waiter, so heavy read concurrency turns into large, bandwidth-
// efficient batches while a lone reader pays only its own latency — the
// dynamic batch-size adaptation the paper claims.
//
// The package also provides TimeoutBatcher, the timeout-based
// asynchronous IO baseline ("TA") that Figure 11 compares against.
package tcq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/ssd"
)

// DefaultDepth is the paper's coalescing limit (io_uring queue depth).
const DefaultDepth = 64

type node struct {
	req  ssd.Request
	at   int64
	done chan int64 // receives the request's DoneTime
	lead chan struct{}
	next atomic.Pointer[node]
}

// Queue is a thread combining queue bound to one SSD (one Value Storage).
type Queue struct {
	dev   *ssd.Device
	depth int
	tail  atomic.Pointer[node]

	batches  atomic.Int64
	combined atomic.Int64

	// BatchHist, when set before first use, records the size of every
	// submitted batch — the Figure 11 batch-size distribution. A nil
	// histogram is a no-op.
	BatchHist *obs.Histogram
}

// New creates a queue over dev with the given coalescing limit
// (DefaultDepth if 0).
func New(dev *ssd.Device, depth int) *Queue {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Queue{dev: dev, depth: depth}
}

// Depth returns the coalescing limit.
func (q *Queue) Depth() int { return q.depth }

// Read submits one read request at virtual time at, possibly combined
// with concurrent readers' requests, and returns its completion time.
// The request's Data is filled on return.
func (q *Queue) Read(at int64, req ssd.Request) int64 {
	n := &node{req: req, at: at, done: make(chan int64, 1), lead: make(chan struct{}, 1)}
	prev := q.tail.Swap(n)
	if prev != nil {
		prev.next.Store(n)
		select {
		case d := <-n.done:
			return d
		case <-n.lead:
			// Leadership handed off: n leads the remaining queue.
			return q.lead(n)
		}
	}
	return q.lead(n)
}

// lead collects a batch starting at n, submits it, and distributes
// completions. It returns n's own completion time.
//
// The leader yields once before collecting so that concurrently runnable
// readers get to enqueue behind it — the "opportunistic" part of the
// scheme. Without the yield, a cooperative scheduler (GOMAXPROCS=1)
// would let every leader run to completion alone and no combining could
// ever occur.
func (q *Queue) lead(n *node) int64 {
	runtime.Gosched()
	batch := []*node{n}
	cur := n
	for {
		if len(batch) >= q.depth {
			break
		}
		next := cur.next.Load()
		if next == nil {
			// Possibly the true end of the queue: try to close it.
			if q.tail.CompareAndSwap(cur, nil) {
				break
			}
			// A follower is mid-enqueue: wait for its link.
			for next == nil {
				runtime.Gosched()
				next = cur.next.Load()
			}
		}
		batch = append(batch, next)
		cur = next
	}

	// At the coalescing limit, either close the queue or hand leadership
	// to the next waiter before doing our IO.
	if len(batch) >= q.depth {
		if !q.tail.CompareAndSwap(cur, nil) {
			next := cur.next.Load()
			for next == nil {
				runtime.Gosched()
				next = cur.next.Load()
			}
			next.lead <- struct{}{}
		}
	}

	// Coalesce and submit (§5.3 step 3). The batch shares one submission
	// (one syscall worth of CPU), but each member's IO is scheduled no
	// earlier than the later of its own arrival and the leader's — a
	// straggler member cannot delay the rest, it just lands later in the
	// device queue.
	q.batches.Add(1)
	q.combined.Add(int64(len(batch)))
	q.BatchHist.Record(int64(len(batch)))
	leaderAt := n.at
	var own int64
	for _, b := range batch {
		at := b.at
		if leaderAt > at {
			at = leaderAt
		}
		comps := q.dev.Submit(at, []ssd.Request{b.req})
		if b == n {
			own = comps[0].DoneTime
		} else {
			b.done <- comps[0].DoneTime
		}
	}
	return own
}

// Stats reports combining effectiveness.
type Stats struct {
	Batches  int64
	Combined int64 // total requests across all batches
}

// AvgBatch returns the mean requests per submission.
func (s Stats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Combined) / float64(s.Batches)
}

// Stats returns a snapshot of the queue's counters.
func (q *Queue) Stats() Stats {
	return Stats{Batches: q.batches.Load(), Combined: q.combined.Load()}
}

// TimeoutBatcher is the timeout-based asynchronous IO baseline of Figure
// 11 ("TA"): requests accumulate until the batch reaches the queue depth
// or a fixed timeout elapses from the first request, then the whole batch
// is submitted. Under low concurrency every request eats the timeout;
// under high concurrency it behaves like static batching.
type TimeoutBatcher struct {
	dev     *ssd.Device
	depth   int
	timeout int64 // virtual ns added to the group's first arrival

	// Grace is the real-time delay before a pending group is rescued and
	// flushed at its virtual deadline (default 200us). It only affects
	// wall-clock progress, never virtual-time results.
	Grace time.Duration

	// BatchHist, when set before first use, records submitted batch
	// sizes (nil is a no-op), mirroring Queue.BatchHist.
	BatchHist *obs.Histogram

	mu      sync.Mutex
	group   []*node
	timer   *time.Timer
	batches atomic.Int64
}

// NewTimeoutBatcher creates the TA baseline. timeout is virtual
// nanoseconds (the paper uses 100 us).
func NewTimeoutBatcher(dev *ssd.Device, depth int, timeout int64) *TimeoutBatcher {
	if depth <= 0 {
		depth = DefaultDepth
	}
	if timeout <= 0 {
		timeout = 100_000
	}
	return &TimeoutBatcher{dev: dev, depth: depth, timeout: timeout}
}

// Read submits req at virtual time at and blocks until its batch flushes.
func (b *TimeoutBatcher) Read(at int64, req ssd.Request) int64 {
	n := &node{req: req, at: at, done: make(chan int64, 1)}
	b.mu.Lock()
	b.group = append(b.group, n)
	if len(b.group) == 1 {
		// Arm a real-time trigger standing in for the device-poll timer;
		// the flush itself happens at the virtual deadline.
		grace := b.Grace
		if grace == 0 {
			grace = 200 * time.Microsecond
		}
		b.timer = time.AfterFunc(grace, func() { b.flush(true) })
	}
	if len(b.group) >= b.depth {
		if b.timer != nil {
			b.timer.Stop()
		}
		b.flushLocked(false)
		b.mu.Unlock()
		return <-n.done
	}
	b.mu.Unlock()
	return <-n.done
}

func (b *TimeoutBatcher) flush(timedOut bool) {
	b.mu.Lock()
	b.flushLocked(timedOut)
	b.mu.Unlock()
}

func (b *TimeoutBatcher) flushLocked(timedOut bool) {
	if len(b.group) == 0 {
		return
	}
	group := b.group
	b.group = nil
	submitAt := group[0].at
	for _, g := range group {
		if g.at > submitAt {
			submitAt = g.at
		}
	}
	if timedOut {
		// The batch waited out the timer from its first arrival.
		if d := group[0].at + b.timeout; d > submitAt {
			submitAt = d
		}
	}
	reqs := make([]ssd.Request, len(group))
	for i, g := range group {
		reqs[i] = g.req
	}
	comps := b.dev.Submit(submitAt, reqs)
	b.batches.Add(1)
	b.BatchHist.Record(int64(len(group)))
	for i, g := range group {
		g.done <- comps[i].DoneTime
	}
}

// Flush forces any pending group out (shutdown/drain).
func (b *TimeoutBatcher) Flush() { b.flush(true) }

// Batches returns the number of batches submitted so far.
func (b *TimeoutBatcher) Batches() int64 { return b.batches.Load() }
