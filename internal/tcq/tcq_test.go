package tcq

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ssd"
)

func newDev() *ssd.Device {
	return ssd.New(ssd.Config{Size: 1 << 22})
}

func prime(dev *ssd.Device, off int64, data []byte) {
	c := dev.Submit(0, []ssd.Request{{Op: ssd.OpWrite, Offset: off, Data: data}})
	dev.Ack(c[0])
}

func TestSingleReaderIsLeader(t *testing.T) {
	dev := newDev()
	prime(dev, 0, []byte("solo"))
	q := New(dev, 64)
	buf := make([]byte, 4)
	done := q.Read(0, ssd.Request{Op: ssd.OpRead, Offset: 0, Data: buf})
	if string(buf) != "solo" {
		t.Fatalf("read %q", buf)
	}
	if done <= 0 {
		t.Fatal("no completion time")
	}
	st := q.Stats()
	if st.Batches != 1 || st.Combined != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentReadersAllServed(t *testing.T) {
	dev := newDev()
	for i := 0; i < 64; i++ {
		prime(dev, int64(i)*512, []byte{byte(i), byte(i), byte(i), byte(i)})
	}
	q := New(dev, 8)
	const readers = 64
	var wg sync.WaitGroup
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, 4)
			done := q.Read(int64(r), ssd.Request{Op: ssd.OpRead, Offset: int64(r) * 512, Data: buf})
			if buf[0] != byte(r) || buf[3] != byte(r) {
				errs <- "wrong data"
			}
			if done <= 0 {
				errs <- "no completion"
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := q.Stats()
	if st.Combined != readers {
		t.Fatalf("served %d of %d", st.Combined, readers)
	}
	if st.Batches == readers {
		t.Log("note: no combining occurred (all singleton batches) — legal but unusual")
	}
	if avg := st.AvgBatch(); avg < 1 || avg > 8 {
		t.Fatalf("avg batch %v outside [1,depth]", avg)
	}
}

func TestCombiningProducesFewerBatches(t *testing.T) {
	dev := newDev()
	q := New(dev, 64)
	const readers = 256
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			buf := make([]byte, 512)
			q.Read(0, ssd.Request{Op: ssd.OpRead, Offset: int64(r) * 512, Data: buf})
		}(r)
	}
	close(start)
	wg.Wait()
	st := q.Stats()
	if st.Combined != readers {
		t.Fatalf("served %d", st.Combined)
	}
	// With 256 concurrent readers and depth 64, combining must produce
	// far fewer batches than readers (conservatively: at most half).
	if st.Batches > readers/2 {
		t.Fatalf("batches = %d for %d readers — combining ineffective", st.Batches, readers)
	}
}

func TestDepthLimitRespected(t *testing.T) {
	dev := newDev()
	q := New(dev, 4)
	const readers = 40
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, 64)
			q.Read(0, ssd.Request{Op: ssd.OpRead, Offset: int64(r) * 64, Data: buf})
		}(r)
	}
	wg.Wait()
	st := q.Stats()
	if st.Combined != readers {
		t.Fatalf("served %d", st.Combined)
	}
	if st.Batches < readers/4 {
		t.Fatalf("batches = %d < ceil(%d/4): depth limit violated", st.Batches, readers)
	}
}

func TestSequentialReadsReuseQueue(t *testing.T) {
	dev := newDev()
	q := New(dev, 64)
	buf := make([]byte, 64)
	for i := 0; i < 100; i++ {
		q.Read(int64(i)*1000, ssd.Request{Op: ssd.OpRead, Offset: 0, Data: buf})
	}
	st := q.Stats()
	if st.Batches != 100 || st.Combined != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTimeoutBatcherFlushesAtDepth(t *testing.T) {
	dev := newDev()
	b := NewTimeoutBatcher(dev, 4, 100_000)
	b.Grace = time.Second // depth, not the rescue timer, must trigger
	var wg sync.WaitGroup
	times := make([]int64, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, 64)
			times[i] = b.Read(int64(i), ssd.Request{Op: ssd.OpRead, Offset: int64(i) * 64, Data: buf})
		}(i)
	}
	wg.Wait()
	for i, d := range times {
		if d <= 0 {
			t.Fatalf("reader %d got no completion", i)
		}
		// Depth-triggered flush: no 100us timeout in the completion.
		if d >= 100_000 {
			t.Fatalf("reader %d waited for timeout (%dns) despite full batch", i, d)
		}
	}
}

func TestTimeoutBatcherLoneRequestPaysTimeout(t *testing.T) {
	dev := newDev()
	b := NewTimeoutBatcher(dev, 64, 100_000)
	buf := make([]byte, 64)
	done := b.Read(0, ssd.Request{Op: ssd.OpRead, Offset: 0, Data: buf})
	if done < 100_000 {
		t.Fatalf("lone TA request completed at %dns, want >= timeout", done)
	}
}

func TestTimeoutBatcherFlushDrains(t *testing.T) {
	dev := newDev()
	b := NewTimeoutBatcher(dev, 64, 1<<40) // effectively no timer rescue
	res := make(chan int64, 1)
	go func() {
		buf := make([]byte, 64)
		res <- b.Read(0, ssd.Request{Op: ssd.OpRead, Offset: 0, Data: buf})
	}()
	// Give the reader time to register, then force the drain.
	for {
		b.Flush()
		select {
		case d := <-res:
			if d <= 0 {
				t.Fatal("drained request has no completion time")
			}
			return
		default:
		}
	}
}
