package valuestore

import (
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// Global offsets pack (device index, store-local offset) into the 45-bit
// offset field of an HSIT forward pointer: [dev:6][localOff:39], allowing
// 64 devices of up to 512 GB of simulated value space each.
const (
	devShift     = 39
	localOffMask = (uint64(1) << devShift) - 1
)

// GlobalOff builds the HSIT-visible offset for a record.
func GlobalOff(devIdx int, localOff uint64) uint64 {
	if localOff > localOffMask {
		panic("valuestore: local offset overflows global encoding")
	}
	return uint64(devIdx)<<devShift | localOff
}

// SplitOff is the inverse of GlobalOff.
func SplitOff(global uint64) (devIdx int, localOff uint64) {
	return int(global >> devShift), global & localOffMask
}

// Manager aggregates one Store per SSD and implements the paper's
// idle-device selection: writers randomly pick a Value Storage with no
// in-flight requests to spread load across the SSD array (§5.2).
type Manager struct {
	Stores []*Store
	rr     atomic.Uint64
}

// NewManager creates one Store per device with the given chunk size.
func NewManager(devs []*ssd.Device, chunkSize int, em *epoch.Manager) *Manager {
	m := &Manager{}
	for _, d := range devs {
		m.Stores = append(m.Stores, NewStore(d, chunkSize, em))
	}
	return m
}

// PickIdle returns a randomly chosen idle store (no in-flight writes), or
// a round-robin fallback when every store is busy.
func (m *Manager) PickIdle(rng *sim.RNG) (int, *Store) {
	n := len(m.Stores)
	start := rng.Intn(n)
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if m.Stores[idx].Dev.InFlight() == 0 {
			return idx, m.Stores[idx]
		}
	}
	idx := int(m.rr.Add(1)) % n
	return idx, m.Stores[idx]
}

// StoreOf resolves a global offset to its store and local offset.
func (m *Manager) StoreOf(global uint64) (*Store, uint64) {
	dev, local := SplitOff(global)
	return m.Stores[dev], local
}

// Invalidate clears the validity bit for the record of valueLen bytes
// at global offset.
func (m *Manager) Invalidate(global uint64, valueLen int) bool {
	s, local := m.StoreOf(global)
	return s.Invalidate(local, valueLen)
}

// IsValid reports whether the record at global offset is up to date.
func (m *Manager) IsValid(global uint64) bool {
	s, local := m.StoreOf(global)
	return s.IsValid(local)
}

// Stats sums the per-store counters.
func (m *Manager) Stats() Stats {
	var t Stats
	for _, s := range m.Stores {
		st := s.Stats()
		t.ChunksWritten += st.ChunksWritten
		t.BytesWritten += st.BytesWritten
		t.UserBytes += st.UserBytes
		t.GCRuns += st.GCRuns
		t.GCLiveMoved += st.GCLiveMoved
		t.GCBytesMoved += st.GCBytesMoved
		t.FreeChunks += st.FreeChunks
		t.LiveChunks += st.LiveChunks
	}
	return t
}

// BeginRecovery clears all volatile chunk state before a post-crash
// rebuild (§5.5). The caller must be quiescent.
func (m *Manager) BeginRecovery() {
	for _, s := range m.Stores {
		s.mu.Lock()
		s.free = s.free[:0]
		s.mu.Unlock()
		for i := range s.chunks {
			s.chunks[i].reset()
			s.chunks[i].state.Store(chunkFree)
		}
	}
}

// MarkRecovered records that a reachable, well-coupled HSIT entry points
// at the record of valueLen bytes at global offset: the validity bit is
// set and the chunk revived.
func (m *Manager) MarkRecovered(global uint64, valueLen int) {
	s, local := m.StoreOf(global)
	ci := int(local) / s.chunkSize
	c := &s.chunks[ci]
	c.state.Store(chunkLive)
	c.setValid(int(local)%s.chunkSize, RecordSize(valueLen))
	end := int32(int(local)%s.chunkSize + RecordSize(valueLen))
	for {
		f := c.fill.Load()
		if end <= f || c.fill.CompareAndSwap(f, end) {
			break
		}
	}
}

// FinishRecovery rebuilds the free lists: every chunk with no live
// records becomes free again.
func (m *Manager) FinishRecovery() {
	for _, s := range m.Stores {
		s.mu.Lock()
		s.free = s.free[:0]
		for i := s.nchunks - 1; i >= 0; i-- {
			if s.chunks[i].state.Load() != chunkLive {
				s.chunks[i].state.Store(chunkFree)
				s.free = append(s.free, i)
			}
		}
		s.mu.Unlock()
	}
}
