// Package valuestore implements Value Storage (§5.1, §5.2): a
// log-structured store of values on flash SSD, organized as fixed-size
// chunks written with large asynchronous IO.
//
// Each chunk holds variable-size records:
//
//	[ backptr:8 ][ len:4 ][ magic:4 ][ value... pad to 16 ]
//
// backptr is the HSIT entry index (backward pointer). A DRAM validity
// bitmap per chunk — one bit per 16-byte unit, addressed by a record's
// chunk-local offset — tracks which records are up to date, so garbage
// collection and recovery never traverse the key index (§5.2). Bitmaps
// are volatile: they are rebuilt from HSIT during recovery (§5.5).
//
// Writes happen in chunk granularity to maximize SSD bandwidth;
// allocating a free chunk is the only critical section, after which the
// owning thread fills and submits its chunk independently (§5.2). Freed
// chunks are recycled only after an epoch-based grace period so stale
// readers are confined to reading stale-but-parseable bytes, which they
// detect by re-validating the HSIT pointer.
package valuestore

import (
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/ssd"
)

const (
	// HeaderSize is the per-record metadata footprint (§5.1).
	HeaderSize  = 16
	recordAlign = 16
	recordMagic = 0x56535245 // "VSRE"

	// DefaultChunkSize is the paper's chunk size (512 KB).
	DefaultChunkSize = 512 << 10
)

// ErrNoFreeChunk is returned when chunk allocation fails; the caller
// should kick GC and retry.
var ErrNoFreeChunk = errors.New("valuestore: no free chunk")

// RecordSize returns the aligned chunk footprint of a value record.
func RecordSize(valueLen int) int {
	return (HeaderSize + valueLen + recordAlign - 1) / recordAlign * recordAlign
}

// EncodeRecord writes a record for (hsitIdx, value) into dst, which must
// have RecordSize(len(value)) bytes, and returns the record size.
func EncodeRecord(dst []byte, hsitIdx uint64, value []byte) int {
	n := RecordSize(len(value))
	binary.LittleEndian.PutUint64(dst[0:], hsitIdx)
	binary.LittleEndian.PutUint32(dst[8:], uint32(len(value)))
	binary.LittleEndian.PutUint32(dst[12:], recordMagic)
	copy(dst[HeaderSize:], value)
	for i := HeaderSize + len(value); i < n; i++ {
		dst[i] = 0
	}
	return n
}

// DecodeRecord parses a record at the start of src, returning the
// backward pointer and value. ok is false if src does not begin with a
// well-formed record.
func DecodeRecord(src []byte) (hsitIdx uint64, value []byte, ok bool) {
	if len(src) < HeaderSize {
		return 0, nil, false
	}
	if binary.LittleEndian.Uint32(src[12:]) != recordMagic {
		return 0, nil, false
	}
	vlen := int(binary.LittleEndian.Uint32(src[8:]))
	if HeaderSize+vlen > len(src) {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(src[0:]), src[HeaderSize : HeaderSize+vlen], true
}

// Chunk states.
const (
	chunkFree int32 = iota
	chunkWriting
	chunkLive
	chunkVictim
)

type chunkMeta struct {
	state     atomic.Int32
	valid     []atomic.Uint64 // bit per 16-byte unit, by chunk-local offset
	live      atomic.Int32    // number of valid records
	liveBytes atomic.Int64    // record bytes still valid (GC victim scoring)
	fill      atomic.Int32    // bytes of record data in the chunk
}

func (c *chunkMeta) bit(localOff int) (word *atomic.Uint64, mask uint64) {
	unit := localOff / recordAlign
	return &c.valid[unit/64], 1 << (uint(unit) % 64)
}

func (c *chunkMeta) setValid(localOff, recSize int) {
	w, m := c.bit(localOff)
	if w.Load()&m == 0 {
		w.Or(m)
		c.live.Add(1)
		c.liveBytes.Add(int64(recSize))
	}
}

func (c *chunkMeta) clearValid(localOff, recSize int) bool {
	w, m := c.bit(localOff)
	for {
		old := w.Load()
		if old&m == 0 {
			return false
		}
		if w.CompareAndSwap(old, old&^m) {
			c.live.Add(-1)
			c.liveBytes.Add(-int64(recSize))
			return true
		}
	}
}

func (c *chunkMeta) isValid(localOff int) bool {
	w, m := c.bit(localOff)
	return w.Load()&m != 0
}

func (c *chunkMeta) reset() {
	for i := range c.valid {
		c.valid[i].Store(0)
	}
	c.live.Store(0)
	c.liveBytes.Store(0)
	c.fill.Store(0)
}

// Stats counts Value Storage activity for the evaluation harness.
type Stats struct {
	ChunksWritten int64
	BytesWritten  int64 // record bytes shipped to the SSD (incl. GC)
	UserBytes     int64 // user payload bytes first landed on this device
	GCRuns        int64
	GCLiveMoved   int64 // live values relocated by GC
	GCBytesMoved  int64 // payload bytes of those values
	FreeChunks    int
	LiveChunks    int
}

// Store is one Value Storage instance — one per SSD (§5.1).
type Store struct {
	Dev       *ssd.Device
	chunkSize int
	nchunks   int
	em        *epoch.Manager

	mu   sync.Mutex
	free []int

	chunks []chunkMeta

	chunksWritten atomic.Int64
	bytesWritten  atomic.Int64
	userBytes     atomic.Int64
	gcRuns        atomic.Int64
	gcLiveMoved   atomic.Int64
	gcBytesMoved  atomic.Int64
}

// AttributeUserBytes credits n user payload bytes to this device — the
// per-device WAF denominator. The engine calls it when a user value
// first lands on the device (PWB reclamation or recovery drain
// publishing a record here). Relocations (GC, demotion, scan rewrite)
// deliberately do not re-attribute: their writes are amplification on
// the destination device, which a per-device WAF must show.
func (s *Store) AttributeUserBytes(n int64) { s.userBytes.Add(n) }

// UserBytes returns the cumulative user payload bytes attributed to
// this device.
func (s *Store) UserBytes() int64 { return s.userBytes.Load() }

// NewStore creates a store covering the whole device with chunkSize-byte
// chunks (DefaultChunkSize if 0).
func NewStore(dev *ssd.Device, chunkSize int, em *epoch.Manager) *Store {
	if chunkSize == 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize%recordAlign != 0 {
		panic("valuestore: chunk size must be 16-byte aligned")
	}
	n := int(dev.Size() / int64(chunkSize))
	if n == 0 {
		panic("valuestore: device smaller than one chunk")
	}
	s := &Store{Dev: dev, chunkSize: chunkSize, nchunks: n, em: em}
	s.chunks = make([]chunkMeta, n)
	units := chunkSize / recordAlign
	for i := range s.chunks {
		s.chunks[i].valid = make([]atomic.Uint64, (units+63)/64)
	}
	s.free = make([]int, n)
	for i := range s.free {
		s.free[i] = n - 1 - i // pop from the end -> ascending allocation
	}
	return s
}

// ChunkSize returns the configured chunk size.
func (s *Store) ChunkSize() int { return s.chunkSize }

// Chunks returns the total chunk count.
func (s *Store) Chunks() int { return s.nchunks }

// FreeChunks returns the current number of free chunks.
func (s *Store) FreeChunks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.free)
}

// Utilization returns the fraction of chunks not free.
func (s *Store) Utilization() float64 {
	return 1 - float64(s.FreeChunks())/float64(s.nchunks)
}

func (s *Store) allocChunk(reserve int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.free)
	if n <= reserve {
		return 0, ErrNoFreeChunk
	}
	idx := s.free[n-1]
	s.free = s.free[:n-1]
	s.chunks[idx].state.Store(chunkWriting)
	return idx, nil
}

// releaseChunk returns a chunk to the free list immediately.
//
// Immediate recycling is safe without an epoch grace period because a
// reader holding a stale location cannot be fooled: (1) before issuing
// the IO it checks the validity bit, which a recycled chunk has cleared
// or repopulated for different offsets; (2) after the IO it validates the
// record's backward pointer and length against its HSIT entry. The only
// coincidence that passes both checks is the same key's record landing at
// the same offset with the same length — in which case the bytes read are
// that key's current committed value, which is a linearizable result for
// the read. (Deferring recycling by epochs is also correct but lets the
// free-chunk count lag reality by two epochs, which starves and
// over-drives GC under pressure.) Note the coincidence argument covers
// only the overlapping read itself: a reader that read the OLD bytes just
// before the recycle must not publish them anywhere later reads can see
// them, which is why SVC admission is guarded by the HSIT publish
// version, not by pointer-word equality.
func (s *Store) releaseChunk(idx int) {
	s.chunks[idx].reset()
	s.chunks[idx].state.Store(chunkFree)
	s.mu.Lock()
	s.free = append(s.free, idx)
	s.mu.Unlock()
}

// Invalidate clears the validity bit of the record of valueLen bytes at
// localOff (the value was superseded, deleted, or migrated). It reports
// whether the bit was set. An empty live chunk is reclaimed immediately.
func (s *Store) Invalidate(localOff uint64, valueLen int) bool {
	ci := int(localOff) / s.chunkSize
	c := &s.chunks[ci]
	cleared := c.clearValid(int(localOff)%s.chunkSize, RecordSize(valueLen))
	if cleared && c.live.Load() == 0 && c.state.CompareAndSwap(chunkLive, chunkVictim) {
		s.releaseChunk(ci)
	}
	return cleared
}

// IsValid reports whether the record at localOff is up to date.
func (s *Store) IsValid(localOff uint64) bool {
	return s.chunks[int(localOff)/s.chunkSize].isValid(int(localOff) % s.chunkSize)
}

// Stats returns a snapshot of store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	freeN := len(s.free)
	s.mu.Unlock()
	live := 0
	for i := range s.chunks {
		if s.chunks[i].state.Load() == chunkLive {
			live++
		}
	}
	return Stats{
		ChunksWritten: s.chunksWritten.Load(),
		BytesWritten:  s.bytesWritten.Load(),
		UserBytes:     s.userBytes.Load(),
		GCRuns:        s.gcRuns.Load(),
		GCLiveMoved:   s.gcLiveMoved.Load(),
		GCBytesMoved:  s.gcBytesMoved.Load(),
		FreeChunks:    freeN,
		LiveChunks:    live,
	}
}

// Writer fills one chunk in memory and ships it with a single large
// asynchronous write (§5.2). Writers are single-threaded; concurrent
// threads each own their writer/chunk.
type Writer struct {
	s     *Store
	chunk int
	buf   []byte
	fill  int
	offs  []entryLoc
}

type entryLoc struct {
	localOff uint64 // chunk-local offset within the store
	hsitIdx  uint64
	valueLen int
}

// NewWriter allocates a free chunk and returns a writer for it. Only the
// garbage collector uses this unreserved form.
func (s *Store) NewWriter() (*Writer, error) { return s.NewWriterReserve(0) }

// NewWriterReserve allocates a chunk only while more than reserve free
// chunks would remain — the headroom GC needs to compact into. Ordinary
// write paths (PWB reclamation, scan rewrite) must pass a positive
// reserve or the store can wedge with zero free chunks and no way for GC
// to make progress.
func (s *Store) NewWriterReserve(reserve int) (*Writer, error) {
	idx, err := s.allocChunk(reserve)
	if err != nil {
		return nil, err
	}
	return &Writer{s: s, chunk: idx, buf: make([]byte, s.chunkSize)}, nil
}

// Room reports whether a value of n bytes fits in the remaining space.
func (w *Writer) Room(n int) bool { return w.fill+RecordSize(n) <= len(w.buf) }

// Len returns the number of records staged.
func (w *Writer) Len() int { return len(w.offs) }

// Add stages a record. It returns the record's store-local offset (what
// the HSIT forward pointer will hold, before the device tag) and false if
// the chunk is full.
func (w *Writer) Add(hsitIdx uint64, value []byte) (localOff uint64, ok bool) {
	if !w.Room(len(value)) {
		return 0, false
	}
	n := EncodeRecord(w.buf[w.fill:], hsitIdx, value)
	localOff = uint64(w.chunk*w.s.chunkSize + w.fill)
	w.offs = append(w.offs, entryLoc{localOff: localOff, hsitIdx: hsitIdx, valueLen: len(value)})
	w.fill += n
	return localOff, true
}

// Entry describes one record committed by a Writer.
type Entry struct {
	LocalOff uint64
	HSITIdx  uint64
	ValueLen int
}

// Commit submits the chunk write at virtual time `at`, waits for the
// completion (returning its DoneTime), acknowledges it, marks every
// record valid, and seals the chunk. The caller then publishes the new
// locations in HSIT; records whose publication fails (the value was
// superseded mid-flight, §5.2) must be un-marked with Invalidate.
//
// Commit with zero staged records releases the chunk and returns at.
func (w *Writer) Commit(at int64) (doneTime int64, entries []Entry) {
	if w.fill == 0 {
		w.s.releaseChunk(w.chunk)
		return at, nil
	}
	comps := w.s.Dev.Submit(at, []ssd.Request{{
		Op:     ssd.OpWrite,
		Offset: int64(w.chunk * w.s.chunkSize),
		Data:   w.buf[:w.fill],
	}})
	done := comps[0].DoneTime
	w.s.Dev.Ack(comps[0])

	c := &w.s.chunks[w.chunk]
	c.fill.Store(int32(w.fill))
	entries = make([]Entry, len(w.offs))
	for i, e := range w.offs {
		c.setValid(int(e.localOff)%w.s.chunkSize, RecordSize(e.valueLen))
		entries[i] = Entry{LocalOff: e.localOff, HSITIdx: e.hsitIdx, ValueLen: e.valueLen}
	}
	c.state.Store(chunkLive)
	w.s.chunksWritten.Add(1)
	w.s.bytesWritten.Add(int64(w.fill))
	return done, entries
}

// Abort releases the writer's chunk without writing.
func (w *Writer) Abort() {
	w.s.releaseChunk(w.chunk)
}

// ReadAt builds the read request for a record at localOff with the given
// value length. The caller submits it (typically through the thread
// combining queue) and parses with DecodeRecord.
func (s *Store) ReadAt(localOff uint64, valueLen int) ssd.Request {
	return ssd.Request{
		Op:     ssd.OpRead,
		Offset: int64(localOff),
		Data:   make([]byte, HeaderSize+valueLen),
	}
}

// GC performs one garbage-collection pass (§5.2): it greedily selects up
// to maxVictims live chunks with the fewest live bytes, migrates their
// live records into fresh chunks, republishes their HSIT pointers via
// relocate, and recycles the victims. relocate must atomically swing
// HSIT[hsitIdx] from oldOff to newOff (PublishIf) and report success.
//
// Chunks that are still mostly live (>90% of their fill) are never chosen
// — compacting them writes nearly as much as it frees, the churn the
// greedy policy exists to avoid.
//
// It returns the number of chunks freed and the virtual completion time.
func (s *Store) GC(at int64, maxVictims int, relocate func(hsitIdx, oldOff, newOff uint64, valueLen int) bool) (freed int, done int64) {
	type victim struct {
		idx  int
		live int64
	}
	var cands []victim
	for i := range s.chunks {
		c := &s.chunks[i]
		if c.state.Load() != chunkLive {
			continue
		}
		// Collect only chunks whose live bytes are well below the chunk
		// capacity: compacting them reclaims real space. (Comparing
		// against capacity, not fill, matters — a short-filled but
		// fully-live chunk still wastes the rest of its chunk.)
		lb := c.liveBytes.Load()
		if lb*10 >= int64(s.chunkSize)*9 {
			continue
		}
		cands = append(cands, victim{i, lb})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].live < cands[b].live })
	if len(cands) > maxVictims {
		cands = cands[:maxVictims]
	}
	done = at
	// Only run when compaction nets at least one whole chunk; otherwise
	// GC would copy a partial chunk into another partial chunk forever.
	var gain int64
	for _, v := range cands {
		gain += int64(s.chunkSize) - v.live
	}
	if len(cands) == 0 || gain < int64(s.chunkSize) {
		return 0, done
	}
	s.gcRuns.Add(1)

	// Phase 1: claim the victims and gather their live records. Claimed
	// victims stay readable (their bitmaps and data are untouched) until
	// phase 3.
	type liveRec struct {
		hsitIdx  uint64
		localOff uint64
		val      []byte
	}
	var liveRecs []liveRec
	var claimed []int
	for _, v := range cands {
		c := &s.chunks[v.idx]
		if !c.state.CompareAndSwap(chunkLive, chunkVictim) {
			continue
		}
		claimed = append(claimed, v.idx)
		fill := int(c.fill.Load())
		buf := make([]byte, fill)
		comps := s.Dev.Submit(done, []ssd.Request{{Op: ssd.OpRead, Offset: int64(v.idx * s.chunkSize), Data: buf}})
		if comps[0].DoneTime > done {
			done = comps[0].DoneTime
		}
		for off := 0; off < fill; {
			hsitIdx, val, ok := DecodeRecord(buf[off:])
			if !ok {
				break
			}
			if c.isValid(off) {
				liveRecs = append(liveRecs, liveRec{
					hsitIdx:  hsitIdx,
					localOff: uint64(v.idx*s.chunkSize + off),
					val:      append([]byte(nil), val...),
				})
			}
			off += RecordSize(len(val))
		}
	}

	// Phase 2: pack every live record into as few output chunks as
	// possible (a chunk is committed only when full or at the very end),
	// then republish the locations.
	i := 0
	migrated := true
	for i < len(liveRecs) {
		w, err := s.NewWriter()
		if err != nil {
			// Out of chunks mid-GC: records from i on stay in their
			// victims, which therefore cannot be released.
			migrated = false
			break
		}
		var batch []liveRec
		for i < len(liveRecs) && w.Room(len(liveRecs[i].val)) {
			w.Add(liveRecs[i].hsitIdx, liveRecs[i].val)
			batch = append(batch, liveRecs[i])
			i++
		}
		cdone, entries := w.Commit(done)
		if cdone > done {
			done = cdone
		}
		for j, e := range entries {
			if relocate(e.HSITIdx, batch[j].localOff, e.LocalOff, e.ValueLen) {
				s.gcLiveMoved.Add(1)
				s.gcBytesMoved.Add(int64(e.ValueLen))
				// Clear the old record's bit so live accounting stays
				// truthful while the victim lingers.
				s.chunks[int(batch[j].localOff)/s.chunkSize].clearValid(int(batch[j].localOff)%s.chunkSize, RecordSize(e.ValueLen))
			} else {
				s.Invalidate(e.LocalOff, e.ValueLen)
			}
		}
	}

	// Phase 3: recycle fully migrated victims; victims still holding
	// unmigrated live records return to service.
	for _, idx := range claimed {
		c := &s.chunks[idx]
		if migrated || c.live.Load() == 0 {
			s.releaseChunk(idx)
			freed++
		} else {
			c.state.Store(chunkLive)
		}
	}
	return freed, done
}

// DemoteChunk is the tiering counterpart of GC: it claims the next live
// chunk at or after cursor (wrapping), reads it, and relocates every
// still-valid record for which cold returns true into dest — the
// capacity tier. relocate must atomically swing the record's HSIT
// pointer from this store's old local offset to dest's new local offset
// (the caller composes the global offsets) and report success; failed
// relocations invalidate the fresh copy instead. Hot records stay in
// place, so a mostly-hot chunk just returns to service with holes where
// its cold records were. A chunk left empty is recycled.
//
// One chunk per call keeps the pass incremental — the maintenance tick
// paces demotion instead of a burst relocating the whole tier at once.
// Claiming via the same chunkLive -> chunkVictim CAS as GC makes the two
// passes mutually exclusive per chunk. Returns the cursor to resume
// from, the number of records moved, and the virtual completion time.
func (s *Store) DemoteChunk(at int64, cursor int, dest *Store, reserve int, cold func(hsitIdx uint64) bool, relocate func(hsitIdx, oldLocal, newLocal uint64, valueLen int) bool) (nextCursor, moved int, done int64) {
	done = at
	if cursor < 0 || cursor >= s.nchunks {
		cursor = 0
	}
	ci := -1
	var c *chunkMeta
	for i := 0; i < s.nchunks; i++ {
		j := (cursor + i) % s.nchunks
		cand := &s.chunks[j]
		if cand.state.Load() != chunkLive || cand.live.Load() == 0 {
			continue
		}
		if cand.state.CompareAndSwap(chunkLive, chunkVictim) {
			ci, c = j, cand
			break
		}
	}
	if ci < 0 {
		return cursor, 0, done
	}
	nextCursor = (ci + 1) % s.nchunks

	// Read the chunk and gather its valid, cold records. The claimed
	// chunk stays readable throughout (bitmap and data untouched until a
	// record actually moves).
	fill := int(c.fill.Load())
	buf := make([]byte, fill)
	comps := s.Dev.Submit(done, []ssd.Request{{Op: ssd.OpRead, Offset: int64(ci * s.chunkSize), Data: buf}})
	if comps[0].DoneTime > done {
		done = comps[0].DoneTime
	}
	type coldRec struct {
		hsitIdx  uint64
		localOff uint64
		val      []byte
	}
	var recs []coldRec
	for off := 0; off < fill; {
		hsitIdx, val, ok := DecodeRecord(buf[off:])
		if !ok {
			break
		}
		if c.isValid(off) && cold(hsitIdx) {
			recs = append(recs, coldRec{
				hsitIdx:  hsitIdx,
				localOff: uint64(ci*s.chunkSize + off),
				val:      append([]byte(nil), val...),
			})
		}
		off += RecordSize(len(val))
	}

	i := 0
	for i < len(recs) {
		w, err := dest.NewWriterReserve(reserve)
		if err != nil {
			break // capacity tier out of space: keep the rest hot-resident
		}
		var batch []coldRec
		for i < len(recs) && w.Room(len(recs[i].val)) {
			w.Add(recs[i].hsitIdx, recs[i].val)
			batch = append(batch, recs[i])
			i++
		}
		cdone, entries := w.Commit(done)
		if cdone > done {
			done = cdone
		}
		for j, e := range entries {
			if relocate(e.HSITIdx, batch[j].localOff, e.LocalOff, e.ValueLen) {
				moved++
				c.clearValid(int(batch[j].localOff)%s.chunkSize, RecordSize(e.ValueLen))
			} else {
				dest.Invalidate(e.LocalOff, e.ValueLen)
			}
		}
	}

	if c.live.Load() == 0 {
		s.releaseChunk(ci)
	} else {
		c.state.Store(chunkLive)
	}
	return nextCursor, moved, done
}
