package valuestore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/epoch"
	"repro/internal/sim"
	"repro/internal/ssd"
)

func newStore(t *testing.T, chunks, chunkSize int) (*Store, *epoch.Manager) {
	t.Helper()
	em := epoch.NewManager()
	dev := ssd.New(ssd.Config{Size: int64(chunks * chunkSize)})
	return NewStore(dev, chunkSize, em), em
}

func TestRecordEncodeDecode(t *testing.T) {
	f := func(idx uint64, val []byte) bool {
		if len(val) > 4096 {
			val = val[:4096]
		}
		buf := make([]byte, RecordSize(len(val)))
		EncodeRecord(buf, idx, val)
		gi, gv, ok := DecodeRecord(buf)
		return ok && gi == idx && bytes.Equal(gv, val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, ok := DecodeRecord(make([]byte, 32)); ok {
		t.Fatal("decoded zeroed bytes")
	}
	if _, _, ok := DecodeRecord([]byte{1, 2}); ok {
		t.Fatal("decoded short buffer")
	}
}

func TestWriterCommitAndRead(t *testing.T) {
	s, _ := newStore(t, 4, 4096)
	w, err := s.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	vals := map[uint64]uint64{} // hsitIdx -> localOff
	for i := uint64(0); i < 10; i++ {
		off, ok := w.Add(i, []byte(fmt.Sprintf("value-%d", i)))
		if !ok {
			t.Fatal("chunk full unexpectedly")
		}
		vals[i] = off
	}
	done, entries := w.Commit(0)
	if done <= 0 {
		t.Fatal("commit returned no virtual time")
	}
	if len(entries) != 10 {
		t.Fatalf("%d entries", len(entries))
	}
	for i, off := range vals {
		if !s.IsValid(off) {
			t.Fatalf("record %d not valid after commit", i)
		}
		req := s.ReadAt(off, len(fmt.Sprintf("value-%d", i)))
		s.Dev.Submit(done, []ssd.Request{req})
		gi, gv, ok := DecodeRecord(req.Data)
		if !ok || gi != i || string(gv) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("read back record %d: ok=%v idx=%d val=%q", i, ok, gi, gv)
		}
	}
}

func TestInvalidateAndChunkRecycling(t *testing.T) {
	s, _ := newStore(t, 2, 4096)
	w, _ := s.NewWriter()
	off1, _ := w.Add(1, []byte("a"))
	off2, _ := w.Add(2, []byte("b"))
	w.Commit(0)
	if s.FreeChunks() != 1 {
		t.Fatalf("free = %d", s.FreeChunks())
	}
	if !s.Invalidate(off1, 1) {
		t.Fatal("invalidate live record failed")
	}
	if s.Invalidate(off1, 1) {
		t.Fatal("double invalidate succeeded")
	}
	if s.IsValid(off1) || !s.IsValid(off2) {
		t.Fatal("bitmap wrong after invalidate")
	}
	// Invalidate the last record: the empty chunk is reclaimed at once.
	s.Invalidate(off2, 1)
	if s.FreeChunks() != 2 {
		t.Fatalf("empty chunk not recycled: free = %d", s.FreeChunks())
	}
}

func TestWriterFullAndAbort(t *testing.T) {
	s, em := newStore(t, 1, 256)
	w, _ := s.NewWriter()
	if _, err := s.NewWriter(); err != ErrNoFreeChunk {
		t.Fatalf("second writer err = %v", err)
	}
	// 256-byte chunk fits 2 records of 100B value (112B each) plus none.
	if _, ok := w.Add(1, make([]byte, 100)); !ok {
		t.Fatal("first add failed")
	}
	if _, ok := w.Add(2, make([]byte, 100)); !ok {
		t.Fatal("second add failed")
	}
	if _, ok := w.Add(3, make([]byte, 100)); ok {
		t.Fatal("overfull add succeeded")
	}
	w.Abort()
	em.Barrier()
	if s.FreeChunks() != 1 {
		t.Fatal("aborted chunk not released")
	}
}

func TestEmptyCommitReleasesChunk(t *testing.T) {
	s, em := newStore(t, 1, 256)
	w, _ := s.NewWriter()
	done, entries := w.Commit(77)
	if done != 77 || entries != nil {
		t.Fatalf("empty commit = (%d, %v)", done, entries)
	}
	em.Barrier()
	if s.FreeChunks() != 1 {
		t.Fatal("chunk leaked on empty commit")
	}
}

func TestGCMigratesOnlyLiveRecords(t *testing.T) {
	s, em := newStore(t, 4, 1024)
	// Fill two chunks, then invalidate most records.
	hsit := map[uint64]uint64{} // hsitIdx -> current localOff
	var idx uint64
	for c := 0; c < 2; c++ {
		w, _ := s.NewWriter()
		for {
			off, ok := w.Add(idx, []byte(fmt.Sprintf("v%04d", idx)))
			if !ok {
				break
			}
			hsit[idx] = off
			idx++
		}
		w.Commit(0)
	}
	// Keep only records 0 and 1 of each chunk live.
	live := map[uint64]bool{}
	perChunk := int(idx) / 2
	for i := uint64(0); i < idx; i++ {
		pos := int(i) % perChunk
		if pos < 2 {
			live[i] = true
		} else {
			s.Invalidate(hsit[i], 5)
		}
	}
	relocations := 0
	freed, done := s.GC(0, 2, func(h, oldOff, newOff uint64, n int) bool {
		if hsit[h] != oldOff {
			t.Fatalf("relocate with stale old offset for %d", h)
		}
		if !live[h] {
			t.Fatalf("GC migrated dead record %d", h)
		}
		hsit[h] = newOff
		relocations++
		return true
	})
	if freed != 2 {
		t.Fatalf("freed %d chunks, want 2", freed)
	}
	if relocations != 4 {
		t.Fatalf("relocated %d, want 4", relocations)
	}
	if done <= 0 {
		t.Fatal("GC consumed no virtual time")
	}
	em.Barrier()
	// All four live records must be valid at their new locations and
	// readable.
	for h := range live {
		if !s.IsValid(hsit[h]) {
			t.Fatalf("record %d invalid after GC", h)
		}
		req := s.ReadAt(hsit[h], 5)
		s.Dev.Submit(done, []ssd.Request{req})
		gi, gv, ok := DecodeRecord(req.Data)
		if !ok || gi != h || string(gv) != fmt.Sprintf("v%04d", h) {
			t.Fatalf("record %d corrupt after GC: %q", h, gv)
		}
	}
	st := s.Stats()
	if st.GCRuns != 1 || st.GCLiveMoved != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGCRespectsFailedRelocation(t *testing.T) {
	s, _ := newStore(t, 4, 1024)
	w, _ := s.NewWriter()
	off, _ := w.Add(9, []byte("stale"))
	w.Commit(0)
	// Invalidate nothing, but refuse relocation (value superseded).
	s.GC(0, 1, func(h, oldOff, newOff uint64, n int) bool {
		if oldOff != off {
			t.Fatalf("unexpected relocation of %d", h)
		}
		return false
	})
	// The new location must have been invalidated; chunk accounting must
	// not count the failed migration as live anywhere permanent.
	st := s.Stats()
	if st.GCLiveMoved != 0 {
		t.Fatalf("failed relocation counted as moved: %+v", st)
	}
}

func TestGlobalOffsetRoundTrip(t *testing.T) {
	f := func(dev uint8, off uint64) bool {
		d := int(dev % 64)
		o := off & localOffMask
		gd, go_ := SplitOff(GlobalOff(d, o))
		return gd == d && go_ == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManagerPickIdleAndInvalidate(t *testing.T) {
	em := epoch.NewManager()
	var devs []*ssd.Device
	for i := 0; i < 4; i++ {
		devs = append(devs, ssd.New(ssd.Config{Size: 1 << 16, Name: fmt.Sprintf("ssd%d", i)}))
	}
	m := NewManager(devs, 4096, em)
	rng := sim.NewRNG(3)
	di, st := m.PickIdle(rng)
	if st != m.Stores[di] {
		t.Fatal("PickIdle index/store mismatch")
	}
	w, _ := st.NewWriter()
	local, _ := w.Add(5, []byte("x"))
	w.Commit(0)
	g := GlobalOff(di, local)
	if !m.IsValid(g) {
		t.Fatal("record not valid via manager")
	}
	if !m.Invalidate(g, 1) {
		t.Fatal("manager invalidate failed")
	}
	if m.IsValid(g) {
		t.Fatal("record valid after invalidate")
	}
}

func TestRecoveryRebuild(t *testing.T) {
	em := epoch.NewManager()
	dev := ssd.New(ssd.Config{Size: 8 * 1024})
	m := NewManager([]*ssd.Device{dev}, 1024, em)
	s := m.Stores[0]
	w, _ := s.NewWriter()
	offA, _ := w.Add(1, []byte("aaaa"))
	offB, _ := w.Add(2, []byte("bbbb"))
	w.Commit(0)

	// Crash: volatile bitmaps are lost. Rebuild with only A reachable.
	m.BeginRecovery()
	if s.FreeChunks() != 0 {
		t.Fatal("BeginRecovery left free chunks")
	}
	m.MarkRecovered(GlobalOff(0, offA), 4)
	m.FinishRecovery()
	if !m.IsValid(GlobalOff(0, offA)) {
		t.Fatal("reachable record not valid after recovery")
	}
	if m.IsValid(GlobalOff(0, offB)) {
		t.Fatal("unreachable record valid after recovery")
	}
	if s.FreeChunks() != 7 {
		t.Fatalf("free chunks after recovery = %d, want 7", s.FreeChunks())
	}
	// The revived chunk is 100% live from recovery's perspective, so the
	// greedy policy must NOT churn it.
	moved := 0
	s.GC(0, 8, func(h, oldOff, newOff uint64, n int) bool {
		moved++
		return true
	})
	if moved != 0 {
		t.Fatalf("GC churned a fully-live recovered chunk (%d moved)", moved)
	}
	// Add a second sparse chunk; now compaction nets a whole chunk, so
	// GC must merge both survivors (A and C) into one output chunk.
	w2, _ := s.NewWriter()
	offC, _ := w2.Add(3, []byte("cccc"))
	offD, _ := w2.Add(4, []byte("dddd"))
	w2.Commit(0)
	m.Invalidate(GlobalOff(0, offD), 4)
	newLoc := map[uint64]uint64{}
	s.GC(0, 8, func(h, oldOff, newOff uint64, n int) bool {
		if h != 1 && h != 3 {
			t.Fatalf("unexpected relocation: h=%d old=%d", h, oldOff)
		}
		newLoc[h] = newOff
		return true
	})
	if len(newLoc) != 2 {
		t.Fatalf("GC merged %d survivors, want 2 (A and C)", len(newLoc))
	}
	for h, off := range newLoc {
		if !s.IsValid(off) {
			t.Fatalf("survivor %d invalid after GC", h)
		}
	}
	_ = offC
}

func TestStatsAccumulate(t *testing.T) {
	s, _ := newStore(t, 4, 1024)
	w, _ := s.NewWriter()
	w.Add(1, make([]byte, 100))
	w.Commit(0)
	st := s.Stats()
	if st.ChunksWritten != 1 || st.BytesWritten != int64(RecordSize(100)) {
		t.Fatalf("stats = %+v", st)
	}
	if st.LiveChunks != 1 || st.FreeChunks != 3 {
		t.Fatalf("chunk accounting = %+v", st)
	}
}
