package ycsb

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace record/replay: a workload can be captured to a plain-text stream
// and replayed later, byte-for-byte reproducible — useful for sharing a
// workload between engines, debugging a specific interleaving, or
// standing in for proprietary production traces (the Nutanix workload of
// §7.5 is only known by its op mix; a captured trace pins it down).
//
// Format: one op per line.
//
//	insert user000000000042
//	update user000000000007
//	read   user000000000099
//	scan   user000000000013 27

// WriteTrace appends op to w in trace format.
func WriteTrace(w io.Writer, op Op) error {
	var err error
	if op.Kind == OpScan {
		_, err = fmt.Fprintf(w, "%s %s %d\n", op.Kind, op.Key, op.ScanLen)
	} else {
		_, err = fmt.Fprintf(w, "%s %s\n", op.Kind, op.Key)
	}
	return err
}

// Capture drains n ops from gen into w and returns them.
func Capture(w io.Writer, gen *Generator, n int) ([]Op, error) {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		op := gen.Next()
		op.Key = append([]byte(nil), op.Key...)
		if err := WriteTrace(w, op); err != nil {
			return ops, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// ReadTrace parses a full trace stream.
func ReadTrace(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("ycsb: trace line %d: %q", line, text)
		}
		var kind OpKind
		switch fields[0] {
		case "insert":
			kind = OpInsert
		case "read":
			kind = OpRead
		case "update":
			kind = OpUpdate
		case "scan":
			kind = OpScan
		default:
			return nil, fmt.Errorf("ycsb: trace line %d: unknown op %q", line, fields[0])
		}
		op := Op{Kind: kind, Key: []byte(fields[1])}
		if kind == OpScan {
			if len(fields) != 3 {
				return nil, fmt.Errorf("ycsb: trace line %d: scan needs a length", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("ycsb: trace line %d: bad scan length %q", line, fields[2])
			}
			op.ScanLen = n
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

// Replayer yields a recorded op stream, Generator-style.
type Replayer struct {
	ops []Op
	pos int
}

// NewReplayer wraps a parsed trace.
func NewReplayer(ops []Op) *Replayer { return &Replayer{ops: ops} }

// Len returns the total trace length.
func (r *Replayer) Len() int { return len(r.ops) }

// Next returns the next op and whether one remained.
func (r *Replayer) Next() (Op, bool) {
	if r.pos >= len(r.ops) {
		return Op{}, false
	}
	op := r.ops[r.pos]
	r.pos++
	return op, true
}

// Reset rewinds the replayer to the start.
func (r *Replayer) Reset() { r.pos = 0 }
