package ycsb

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	cfg := Config{Workload: WorkloadE, Records: 500}
	gen := NewGenerator(cfg, NewShared(cfg), 7)
	var buf bytes.Buffer
	want, err := Capture(&buf, gen, 200)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || string(got[i].Key) != string(want[i].Key) || got[i].ScanLen != want[i].ScanLen {
			t.Fatalf("op %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestTraceIgnoresCommentsAndBlanks(t *testing.T) {
	in := "# header\n\nread user000000000001\n  \nupdate user000000000002\n"
	ops, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Kind != OpRead || ops[1].Kind != OpUpdate {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"fly user1\n",
		"read\n",
		"scan user1\n",
		"scan user1 zero\n",
		"scan user1 0\n",
	} {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestReplayer(t *testing.T) {
	ops := []Op{
		{Kind: OpInsert, Key: []byte("a")},
		{Kind: OpScan, Key: []byte("b"), ScanLen: 9},
	}
	r := NewReplayer(ops)
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
	o1, ok := r.Next()
	if !ok || o1.Kind != OpInsert {
		t.Fatalf("first = %+v, %v", o1, ok)
	}
	o2, ok := r.Next()
	if !ok || o2.ScanLen != 9 {
		t.Fatalf("second = %+v", o2)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("Next past end succeeded")
	}
	r.Reset()
	if _, ok := r.Next(); !ok {
		t.Fatal("Reset did not rewind")
	}
}

func TestCaptureDeterministic(t *testing.T) {
	mk := func() string {
		cfg := Config{Workload: WorkloadA, Records: 100}
		gen := NewGenerator(cfg, NewShared(cfg), 3)
		var buf bytes.Buffer
		Capture(&buf, gen, 100)
		return buf.String()
	}
	if mk() != mk() {
		t.Fatal("same seed produced different traces")
	}
}
