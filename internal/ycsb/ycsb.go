// Package ycsb generates the workloads of the paper's evaluation
// (Table 2): YCSB LOAD and A-E with zipfian, scrambled-zipfian, latest,
// and uniform request distributions, plus the Nutanix production mix of
// §7.5 (57% updates, 41% reads, 2% scans).
//
// The zipfian generator is the Gray et al. rejection-free algorithm used
// by the original YCSB; scrambling hashes ranks over the keyspace so hot
// keys are spread rather than clustered.
package ycsb

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/sim"
)

// OpKind is a workload operation type.
type OpKind uint8

// Operation kinds.
const (
	OpInsert OpKind = iota
	OpRead
	OpUpdate
	OpScan
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpScan:
		return "scan"
	}
	return "?"
}

// Op is one generated request.
type Op struct {
	Kind    OpKind
	Key     []byte
	ScanLen int // for OpScan
}

// Key renders record number i as a YCSB-style key with a fixed width, so
// lexicographic order equals numeric order (scans work naturally).
func Key(i uint64) []byte {
	return []byte(fmt.Sprintf("user%012d", i))
}

// Workload identifies a Table 2 workload.
type Workload byte

// Workloads of Table 2 plus the Nutanix production mix (§7.5).
const (
	Load      Workload = 'L' // write-only: 100% inserts
	WorkloadA Workload = 'A' // 50% updates, 50% reads
	WorkloadB Workload = 'B' // 5% updates, 95% reads
	WorkloadC Workload = 'C' // read-only
	WorkloadD Workload = 'D' // read-latest: 5% updates, 95% reads
	WorkloadE Workload = 'E' // scan-intensive: 5% updates, 95% scans
	Nutanix   Workload = 'N' // 57% updates, 41% reads, 2% scans
)

// Mix is an operation mix in percent (must sum to 100).
type Mix struct {
	InsertPct, ReadPct, UpdatePct, ScanPct int
}

// MixOf returns the op mix for a workload.
func MixOf(w Workload) Mix {
	switch w {
	case Load:
		return Mix{InsertPct: 100}
	case WorkloadA:
		return Mix{UpdatePct: 50, ReadPct: 50}
	case WorkloadB:
		return Mix{UpdatePct: 5, ReadPct: 95}
	case WorkloadC:
		return Mix{ReadPct: 100}
	case WorkloadD:
		return Mix{UpdatePct: 5, ReadPct: 95}
	case WorkloadE:
		return Mix{UpdatePct: 5, ScanPct: 95}
	case Nutanix:
		return Mix{UpdatePct: 57, ReadPct: 41, ScanPct: 2}
	}
	panic(fmt.Sprintf("ycsb: unknown workload %q", byte(w)))
}

// Config parameterizes a workload run.
type Config struct {
	Workload    Workload
	Records     uint64  // loaded record count (keyspace size)
	Zipfian     float64 // request-distribution skew; 0 disables (uniform)
	MaxScanLen  int     // uniform in [1, MaxScanLen]; default 100 (avg ~50)
	ValueSize   int     // bytes per value; default 1024 (paper: 1 KB)
	InsertStart uint64  // next record number for inserts (default Records)
}

func (c *Config) applyDefaults() {
	if c.MaxScanLen == 0 {
		c.MaxScanLen = 100
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024
	}
	if c.Zipfian == 0 && c.Workload != Load {
		c.Zipfian = 0.99
	}
	if c.InsertStart == 0 {
		c.InsertStart = c.Records
	}
}

// Shared is generator state common to all threads of one run: the insert
// cursor (so concurrent inserts pick unique record numbers, and the
// latest distribution knows the newest record).
type Shared struct {
	inserted atomic.Uint64
}

// NewShared creates the shared state for a run over cfg.Records records.
func NewShared(cfg Config) *Shared {
	cfg.applyDefaults()
	s := &Shared{}
	s.inserted.Store(cfg.InsertStart)
	return s
}

// Count returns the current total record count.
func (s *Shared) Count() uint64 { return s.inserted.Load() }

// Generator produces the request stream for one thread.
type Generator struct {
	cfg    Config
	mix    Mix
	rng    *sim.RNG
	zipf   *Zipfian
	shared *Shared
	valBuf []byte
	ctr    uint64
}

// NewGenerator creates a per-thread generator. Generators sharing a
// Shared coordinate inserts; each must have its own seed.
func NewGenerator(cfg Config, shared *Shared, seed uint64) *Generator {
	cfg.applyDefaults()
	g := &Generator{
		cfg:    cfg,
		mix:    MixOf(cfg.Workload),
		rng:    sim.NewRNG(seed),
		shared: shared,
		valBuf: make([]byte, cfg.ValueSize),
	}
	if cfg.Zipfian > 0 && cfg.Records > 0 {
		g.zipf = NewZipfian(cfg.Records, cfg.Zipfian)
	}
	return g
}

// chooseExisting picks a record number among the loaded ones according
// to the request distribution.
func (g *Generator) chooseExisting() uint64 {
	n := g.shared.Count()
	if n == 0 {
		return 0
	}
	if g.cfg.Workload == WorkloadD {
		// Latest: skew toward the most recently inserted records.
		var off uint64
		if g.zipf != nil {
			off = g.zipf.Next(g.rng)
		} else {
			off = g.rng.Uint64()
		}
		return n - 1 - off%n
	}
	if g.zipf == nil {
		return g.rng.Uint64() % n
	}
	r := g.zipf.Next(g.rng)
	// Scramble so hot ranks spread over the keyspace (YCSB scrambled
	// zipfian), then clamp into the live range.
	return fnv64(r) % n
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	g.ctr++
	p := g.rng.Intn(100)
	switch {
	case p < g.mix.InsertPct:
		id := g.shared.inserted.Add(1) - 1
		return Op{Kind: OpInsert, Key: Key(id)}
	case p < g.mix.InsertPct+g.mix.UpdatePct:
		return Op{Kind: OpUpdate, Key: Key(g.chooseExisting())}
	case p < g.mix.InsertPct+g.mix.UpdatePct+g.mix.ReadPct:
		return Op{Kind: OpRead, Key: Key(g.chooseExisting())}
	default:
		return Op{Kind: OpScan, Key: Key(g.chooseExisting()), ScanLen: 1 + g.rng.Intn(g.cfg.MaxScanLen)}
	}
}

// Value fills and returns the generator's value buffer for key id — a
// deterministic, compressible-realistic payload of ValueSize bytes. The
// buffer is reused across calls.
func (g *Generator) Value(id uint64) []byte {
	b := g.valBuf
	seed := id*0x9e3779b97f4a7c15 + g.ctr
	for i := 0; i+8 <= len(b); i += 8 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		for j := 0; j < 8; j++ {
			b[i+j] = byte(seed >> (8 * uint(j)))
		}
	}
	return b
}

func fnv64(v uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 0x100000001b3
		v >>= 8
	}
	return h
}

// Zipfian draws ranks in [0, items) with P(rank) proportional to
// 1/(rank+1)^theta, using the Gray et al. closed-form method (the YCSB
// generator).
type Zipfian struct {
	items        uint64
	theta        float64
	alpha        float64
	zetan        float64
	eta          float64
	halfPowTheta float64
}

// NewZipfian precomputes the distribution constants. Cost is O(items).
func NewZipfian(items uint64, theta float64) *Zipfian {
	if items == 0 {
		panic("ycsb: zipfian over empty set")
	}
	z := &Zipfian{items: items, theta: theta}
	z.zetan = zeta(items, theta)
	zeta2 := zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(items), 1-theta)) / (1 - zeta2/z.zetan)
	z.halfPowTheta = 1.0 + math.Pow(0.5, theta)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(0); i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
	}
	return sum
}

// Next draws a rank (0 = hottest).
func (z *Zipfian) Next(rng *sim.RNG) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < z.halfPowTheta {
		return 1
	}
	r := uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1.0, z.alpha))
	if r >= z.items {
		r = z.items - 1
	}
	return r
}
