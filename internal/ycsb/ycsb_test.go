package ycsb

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/sim"
)

func TestKeyOrderMatchesNumericOrder(t *testing.T) {
	prev := Key(0)
	for _, i := range []uint64{1, 9, 10, 99, 12345, 999999999} {
		k := Key(i)
		if bytes.Compare(prev, k) >= 0 {
			t.Fatalf("Key(%d) not greater than previous", i)
		}
		prev = k
	}
}

func TestMixesSumTo100(t *testing.T) {
	for _, w := range []Workload{Load, WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, Nutanix} {
		m := MixOf(w)
		if s := m.InsertPct + m.ReadPct + m.UpdatePct + m.ScanPct; s != 100 {
			t.Errorf("workload %c mix sums to %d", w, s)
		}
	}
}

func TestOpMixFrequencies(t *testing.T) {
	cfg := Config{Workload: WorkloadA, Records: 1000}
	g := NewGenerator(cfg, NewShared(cfg), 1)
	counts := map[OpKind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	if r := float64(counts[OpRead]) / n; math.Abs(r-0.5) > 0.03 {
		t.Fatalf("read fraction %v, want ~0.5", r)
	}
	if u := float64(counts[OpUpdate]) / n; math.Abs(u-0.5) > 0.03 {
		t.Fatalf("update fraction %v, want ~0.5", u)
	}
	if counts[OpInsert]+counts[OpScan] != 0 {
		t.Fatalf("workload A produced inserts/scans: %v", counts)
	}
}

func TestLoadIsAllInsertsWithUniqueKeys(t *testing.T) {
	cfg := Config{Workload: Load, Records: 0, InsertStart: 1}
	sh := NewShared(cfg)
	g1 := NewGenerator(cfg, sh, 1)
	g2 := NewGenerator(cfg, sh, 2)
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		for _, g := range []*Generator{g1, g2} {
			op := g.Next()
			if op.Kind != OpInsert {
				t.Fatalf("LOAD produced %v", op.Kind)
			}
			if seen[string(op.Key)] {
				t.Fatalf("duplicate insert key %s", op.Key)
			}
			seen[string(op.Key)] = true
		}
	}
}

func TestScanWorkloadProducesScans(t *testing.T) {
	cfg := Config{Workload: WorkloadE, Records: 1000, MaxScanLen: 100}
	g := NewGenerator(cfg, NewShared(cfg), 3)
	scans, totalLen := 0, 0
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Kind == OpScan {
			scans++
			totalLen += op.ScanLen
			if op.ScanLen < 1 || op.ScanLen > 100 {
				t.Fatalf("scan length %d out of range", op.ScanLen)
			}
		}
	}
	if frac := float64(scans) / 10000; math.Abs(frac-0.95) > 0.02 {
		t.Fatalf("scan fraction %v", frac)
	}
	if avg := float64(totalLen) / float64(scans); math.Abs(avg-50.5) > 3 {
		t.Fatalf("average scan length %v, want ~50", avg)
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(10000, 0.99)
	rng := sim.NewRNG(7)
	counts := make([]int, 10000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next(rng)]++
	}
	// Rank 0 should dominate; the hottest 1% of ranks should carry a
	// large share of requests.
	if counts[0] < counts[100] {
		t.Fatal("rank 0 not hotter than rank 100")
	}
	var top1 int
	for i := 0; i < 100; i++ {
		top1 += counts[i]
	}
	if frac := float64(top1) / n; frac < 0.3 {
		t.Fatalf("top-1%% ranks got only %.2f of requests", frac)
	}
	// All draws in range.
	for r, c := range counts {
		if c < 0 {
			t.Fatalf("negative count at %d", r)
		}
	}
}

func TestZipfianThetaMonotonicity(t *testing.T) {
	share := func(theta float64) float64 {
		z := NewZipfian(1000, theta)
		rng := sim.NewRNG(11)
		hot := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.Next(rng) < 10 {
				hot++
			}
		}
		return float64(hot) / n
	}
	s5, s99, s12 := share(0.5), share(0.99), share(1.2)
	if !(s5 < s99 && s99 < s12) {
		t.Fatalf("hot share not increasing with theta: %v %v %v", s5, s99, s12)
	}
}

func TestUniformWhenZipfianDisabled(t *testing.T) {
	cfg := Config{Workload: WorkloadC, Records: 100, Zipfian: -1}
	cfg.applyDefaults()
	if cfg.Zipfian != -1 {
		t.Skip("negative sentinel overridden")
	}
}

func TestLatestDistributionSkewsRecent(t *testing.T) {
	cfg := Config{Workload: WorkloadD, Records: 10000}
	g := NewGenerator(cfg, NewShared(cfg), 5)
	recent := 0
	const n = 20000
	for i := 0; i < n; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			continue
		}
		var id uint64
		if _, err := parseKey(op.Key, &id); err != nil {
			t.Fatal(err)
		}
		if id >= 9000 {
			recent++
		}
	}
	if frac := float64(recent) / n; frac < 0.5 {
		t.Fatalf("latest distribution read recent 10%% only %.2f of the time", frac)
	}
}

func parseKey(k []byte, id *uint64) (int, error) {
	var n uint64
	for _, c := range k[4:] {
		n = n*10 + uint64(c-'0')
	}
	*id = n
	return 0, nil
}

func TestValueDeterministicSizeAndVariety(t *testing.T) {
	cfg := Config{Workload: WorkloadA, Records: 10, ValueSize: 256}
	g := NewGenerator(cfg, NewShared(cfg), 9)
	v1 := append([]byte(nil), g.Value(1)...)
	v2 := append([]byte(nil), g.Value(2)...)
	if len(v1) != 256 || len(v2) != 256 {
		t.Fatalf("value sizes %d/%d", len(v1), len(v2))
	}
	if bytes.Equal(v1, v2) {
		t.Fatal("distinct ids produced identical values")
	}
}

func TestInsertsExtendKeyspaceForLatest(t *testing.T) {
	cfg := Config{Workload: WorkloadD, Records: 100}
	sh := NewShared(cfg)
	if sh.Count() != 100 {
		t.Fatalf("initial count %d", sh.Count())
	}
	g := NewGenerator(Config{Workload: Load, Records: 100, InsertStart: 100}, sh, 1)
	op := g.Next()
	if op.Kind != OpInsert || string(op.Key) != string(Key(100)) {
		t.Fatalf("insert op = %v %s", op.Kind, op.Key)
	}
	if sh.Count() != 101 {
		t.Fatalf("count after insert %d", sh.Count())
	}
}
