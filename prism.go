// Package prism is a from-scratch Go reproduction of Prism, the
// key-value store for modern heterogeneous storage devices described in
//
//	Song, Kim, Monga, Min, Eom. "Prism: Optimizing Key-Value Store for
//	Modern Heterogeneous Storage Devices." ASPLOS 2023.
//
// Prism places each component on the storage medium that best matches
// its needs: a Persistent Key Index and Heterogeneous Storage Index
// Table (HSIT) on byte-addressable NVM, per-thread Persistent Write
// Buffers (PWB) on NVM, log-structured Value Storage on flash SSDs, and
// a Scan-aware Value Cache (SVC) in DRAM. Cross-media concurrency
// control and crash consistency ride on the HSIT's forward/backward
// pointer coupling and dirty-bit flush-on-read protocol.
//
// The storage devices themselves are simulated (this reproduction runs
// without Optane DIMMs or NVMe arrays): NVM with cache-line flush/fence
// persistence semantics and crash simulation, SSDs with asynchronous
// submission/completion queues and a virtual-time bandwidth/latency
// model. All of Prism's algorithms — thread combining, 2Q caching,
// chunked log-structured writes, garbage collection, epoch-based
// reclamation, recovery — are implemented for real on top of that model.
// See DESIGN.md for the full substitution rationale.
//
// # Quick start
//
//	store, err := prism.Open(prism.Options{})
//	if err != nil { ... }
//	defer store.Close()
//
//	t := store.Thread(0) // one handle per application thread
//	t.Put([]byte("k"), []byte("v"))
//	v, err := t.Get([]byte("k"))
//	t.Scan([]byte("a"), 10, func(kv prism.KV) bool { ...; return true })
//
//	// Batch forms amortize the epoch toll: one critical section, one
//	// PWB publish window / merged read pass per batch. PutBatch is
//	// prefix-durable under crashes, not atomic.
//	t.PutBatch([]prism.KV{{Key: k1, Value: v1}, {Key: k2, Value: v2}})
//	vals, err := t.MultiGet([][]byte{k1, k2}) // nil entry = missing key
//
//	// Asynchronous submission goes further: PutAsync/GetAsync/
//	// DeleteAsync return immediately with a completion Handle, and a
//	// per-thread admission loop coalesces everything in flight into a
//	// few epoch windows whose fixed device latencies overlap (§5.4's
//	// TCQ/io_uring submission model). Handles resolve exactly once.
//	h := t.PutAsync([]byte("k"), []byte("v"))
//	g := t.GetAsync([]byte("k"))
//	t.Flush()                // drain: block until all in flight complete
//	if err := h.Wait(); err != nil { ... }
//	v, err = g.Value()
//
// Thread handles are not safe for concurrent use; distinct handles run
// in parallel and scale with the paper's cross-storage concurrency
// control. The asynchronous methods are the exception: they may be
// called from any goroutine, and submissions through one handle apply
// in submission order.
//
// # Sharding
//
// Options.Shards > 1 opens that many independent stores behind a pure
// hash router (package internal/shard): keys place by FNV-1a 64 + jump
// consistent hash, single-key ops keep the pinned per-thread fast path
// on the owning shard, batches fan out to per-shard sub-batches in
// parallel, and Scan k-way merges the per-shard ordered scans. The
// default (0 or 1) runs a single shard with no routing overhead beyond
// one nil-check hash call.
//
// # Replication
//
// Options.Replicas > 1 (requires Shards >= Replicas) places every key
// on its jump-hash primary plus the next Replicas-1 shards in ring
// order. Writes fan out to all live replicas under one logical
// timestamp with last-writer-wins reconciliation; reads serve from the
// primary and fail over to successors on a miss or crash. A crashed
// shard (Store.CrashShard) leaves its keyspace fully served by the
// survivors; after Store.RecoverShard, background anti-entropy pull
// passes re-converge it (Store.Repair runs a pass by hand), with delete
// tombstones propagated and discarded after a grace window. Replicas
// set to 0 or 1 is bit-for-bit the unreplicated router.
//
// # Placement
//
// Options.Placement selects how the router places keys. The default,
// "hash", is the jump-hash placement above. "range" (requires Shards >
// 1) routes through a boundary table instead: Options.SplitKeys cuts
// the keyspace into contiguous ranges, each owned by one shard (its
// whole replica set when replicated), so a Scan touches only the shards
// whose ranges intersect it — no k-way merge across non-owners. With no
// split keys the single all-covering range routes by hash until
// boundaries are learned online (Store.RebalanceRanges samples live
// keys, installs equal-population splits, and migrates each range to
// its owner).
//
// Range placement is resharded online: Store.SplitRange inserts a
// boundary (routing-only, no data moves), and Store.MigrateRange moves
// a range — with its whole replica set — to a new shard while serving
// traffic: catch-up stream, brief write freeze, delta stream, then an
// epoch-bumped table flip with a short dual-read window before the
// source copies are purged. An acked write is never lost across a
// migration, and crashes before the flip abort with placement
// unchanged. See DESIGN.md §4.8.
package prism

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/ssd"
)

// Options configures a Store; see core.Options for field documentation.
// The zero value opens a small test-sized store. Options.Shards selects
// horizontal scale-out (every shard gets the full per-shard resources).
type Options = core.Options

// Store is a Prism key-value store over simulated heterogeneous
// devices: a shard router over one or more core engine instances.
type Store = shard.Store

// Thread is one application thread's handle (virtual clock, and on each
// shard an epoch registration and private Persistent Write Buffer).
type Thread = shard.Thread

// KV is one key-value pair yielded by Thread.Scan.
type KV = core.KV

// Handle is the completion future returned by the asynchronous
// submission methods (Thread.PutAsync, GetAsync, DeleteAsync). Wait,
// Value, and CompletedAt block until the operation completes; Done
// polls. All methods are safe from any goroutine, repeatedly.
type Handle = core.Handle

// Stats is a snapshot of store counters.
type Stats = core.Stats

// Metrics is the store's observability snapshot: every registered metric
// with a stable name, labels, and value, JSON-serializable and sorted.
// Obtain one with (*Store).Metrics(); METRICS.md documents every name.
type Metrics = obs.Snapshot

// RecoveryReport summarizes a post-crash recovery pass.
type RecoveryReport = core.RecoveryReport

// Sentinel errors.
var (
	ErrNotFound = core.ErrNotFound
	ErrClosed   = core.ErrClosed
)

// Open creates a Store over fresh simulated NVM and SSD devices —
// opt.Shards of them when sharding is enabled.
func Open(opt Options) (*Store, error) { return shard.Open(opt) }

// ParseTierSpec parses the cmd tools' -tiers flag — a comma-separated
// device list, each "size[:writeMBps[:readMBps]]" with K/M/G suffixes —
// into per-device SSD configs for Options.SSDConfigs.
func ParseTierSpec(spec string) ([]ssd.Config, error) { return core.ParseTierSpec(spec) }

// ParseSplitKeys parses the cmd tools' -split flag — a comma-separated
// list of range boundary keys — into Options.SplitKeys. Empty segments
// are dropped; an empty spec returns nil (one all-covering range).
func ParseSplitKeys(spec string) [][]byte {
	var keys [][]byte
	start := 0
	for i := 0; i <= len(spec); i++ {
		if i == len(spec) || spec[i] == ',' {
			if i > start {
				keys = append(keys, []byte(spec[start:i]))
			}
			start = i + 1
		}
	}
	return keys
}
