package prism_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro"
)

func openSmall(t *testing.T) *prism.Store {
	t.Helper()
	s, err := prism.Open(prism.Options{
		NumThreads:        2,
		PWBBytesPerThread: 128 << 10,
		HSITCapacity:      1 << 14,
		NumSSDs:           2,
		SSDBytes:          8 << 20,
		SVCBytes:          256 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPublicAPIRoundTrip(t *testing.T) {
	s := openSmall(t)
	th := s.Thread(0)
	if err := th.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := th.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := th.Get([]byte("nope")); !errors.Is(err, prism.ErrNotFound) {
		t.Fatalf("missing key error = %v", err)
	}
	if err := th.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Get([]byte("k")); !errors.Is(err, prism.ErrNotFound) {
		t.Fatal("delete did not take effect")
	}
}

func TestPublicAPIScan(t *testing.T) {
	s := openSmall(t)
	th := s.Thread(0)
	for i := 0; i < 50; i++ {
		th.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	var got []string
	th.Scan([]byte("key010"), 5, func(kv prism.KV) bool {
		got = append(got, string(kv.Key))
		return true
	})
	want := []string{"key010", "key011", "key012", "key013", "key014"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
}

func TestPublicAPICrashRecover(t *testing.T) {
	s := openSmall(t)
	th := s.Thread(0)
	for i := 0; i < 500; i++ {
		th.Put([]byte(fmt.Sprintf("key%04d", i)), []byte(fmt.Sprintf("val%04d", i)))
	}
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveKeys != 500 || rep.LostKeys != 0 {
		t.Fatalf("recovery report: %+v", rep)
	}
	got, err := th.Get([]byte("key0123"))
	if err != nil || string(got) != "val0123" {
		t.Fatalf("post-recovery read: %q, %v", got, err)
	}
}

func TestPublicAPIConcurrentThreads(t *testing.T) {
	s := openSmall(t)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.Thread(w)
			for i := 0; i < 400; i++ {
				k := []byte(fmt.Sprintf("w%d-%04d", w, i))
				if err := th.Put(k, []byte("x")); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// Property: the store agrees with a map reference under random
// single-threaded operation sequences through the public API.
func TestPublicAPIMatchesModel(t *testing.T) {
	s := openSmall(t)
	th := s.Thread(0)
	ref := map[string]string{}
	f := func(ops []uint16) bool {
		for _, o := range ops {
			k := fmt.Sprintf("key%03d", o%200)
			switch (o / 200) % 3 {
			case 0:
				v := fmt.Sprintf("v%d", o)
				if err := th.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				ref[k] = v
			case 1:
				delete(ref, k)
				th.Delete([]byte(k))
			case 2:
				got, err := th.Get([]byte(k))
				want, ok := ref[k]
				if ok != (err == nil) {
					return false
				}
				if ok && !bytes.Equal(got, []byte(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
